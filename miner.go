package kaleido

import (
	"context"
	"sync"

	"kaleido/internal/apps"
	"kaleido/internal/eigen"
	"kaleido/internal/explore"
	"kaleido/internal/memtrack"
	"kaleido/internal/pattern"
	"kaleido/internal/storage"
)

// Mode selects the exploration unit for a custom Miner.
type Mode int

const (
	// VertexInduced embeddings grow by one vertex per iteration.
	VertexInduced Mode = iota
	// EdgeInduced embeddings grow by one edge per iteration.
	EdgeInduced
)

// EmbeddingFilter is the user-defined filter of the Kaleido API (Listing 1):
// may cand (a vertex id in vertex-induced mode, an edge id in edge-induced
// mode) extend the embedding emb? The default canonical filter has already
// been applied. worker identifies the calling goroutine (0..Threads-1) so a
// filter can keep per-worker scratch — e.g. a NeighborMarker-style structure
// that marks the embedding's neighborhoods once per shared prefix and then
// answers every candidate probe in O(1); the built-in clique filter works
// this way.
type EmbeddingFilter func(worker int, emb []uint32, cand uint32) bool

// Miner exposes the paper's exploration API (Listing 1: Init,
// EmbeddingsExplorer, ResultAggregator) for custom mining applications.
// A Miner must be Closed to release spilled levels.
type Miner struct {
	g    *Graph
	e    *explore.Explorer
	cfg  Config
	mode Mode

	// en, when the Miner was vended by an Engine, receives the run-lifecycle
	// accounting at Close (once, even though Close is idempotent).
	en     *Engine
	enOnce sync.Once
}

// NewMiner creates a Miner over g. ctx only gates creation; each exploration
// call takes its own context. Use Engine.NewMiner to share one memory budget
// across concurrent miners.
func (g *Graph) NewMiner(ctx context.Context, mode Mode, cfg Config) (*Miner, error) {
	return newMiner(ctx, g, mode, cfg, nil)
}

func newMiner(ctx context.Context, g *Graph, mode Mode, cfg Config, tracker *memtrack.Tracker) (*Miner, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if err := ctxOrBackground(ctx).Err(); err != nil {
		return nil, err
	}
	e, err := explore.New(explore.Config{
		Graph:               g.g,
		Mode:                modeOf(mode),
		Threads:             cfg.Threads,
		MemoryBudget:        cfg.MemoryBudget,
		SpillDir:            cfg.SpillDir,
		SpillWatermark:      cfg.SpillWatermark,
		Predict:             cfg.Predict,
		PredictSample:       cfg.PredictSample,
		Compression:         storage.Compression(cfg.Compression),
		ResidentCompression: storage.Compression(cfg.ResidentCompression),
		FS:                  cfg.Faults.fs(),
		Tracker:             tracker,
	})
	if err != nil {
		return nil, err
	}
	m := &Miner{g: g, e: e, cfg: cfg, mode: mode}
	if mode == EdgeInduced {
		err = e.InitEdges(nil)
	} else {
		err = e.InitVertices(nil)
	}
	if err != nil {
		e.Close()
		return nil, err
	}
	return m, nil
}

// Expand runs one exploration iteration under the canonical filter plus the
// optional user filter, materializing the new level in the CSE (the
// StoreSink of the expansion pipeline). Cancelling ctx aborts the iteration
// with ctx.Err(): the partial level is discarded, the previous levels stay
// usable, and Close still reclaims every spilled file.
func (m *Miner) Expand(ctx context.Context, filter EmbeddingFilter) error {
	vf, ef := m.filters(filter)
	return m.e.Expand(ctxOrBackground(ctx), vf, ef)
}

// ExpandCount runs one exploration iteration and returns how many
// embeddings it would produce without materializing them (CountSink): depth
// and intermediate data are unchanged, and zero bytes are written for the
// counted level. Use it for the final iteration of a counting workload —
// the last level dominates the bytes a run writes, and a count is all such
// workloads need (CliqueCount works this way; see §6.5 of the paper for the
// k−1-levels trick this generalizes). Cancelling ctx aborts the count with
// ctx.Err().
func (m *Miner) ExpandCount(ctx context.Context, filter EmbeddingFilter) (uint64, error) {
	vf, ef := m.filters(filter)
	return m.e.ExpandCount(ctxOrBackground(ctx), vf, ef)
}

// ExpandVisit runs one exploration iteration and hands every canonical
// extension (emb, cand) to visit instead of materializing the new level
// (VisitSink) — the Mapper-side consumption of a terminal expansion (motif
// counting, FSM's final aggregation). worker identifies the calling
// goroutine for per-worker aggregation state; emb is a reused buffer that
// must not be retained. Cancelling ctx aborts the walk with ctx.Err().
func (m *Miner) ExpandVisit(ctx context.Context, filter EmbeddingFilter, visit func(worker int, emb []uint32, cand uint32) error) error {
	vf, ef := m.filters(filter)
	if tr := m.translator(); tr != nil {
		inner := visit
		og := m.g.g
		visit = func(w int, emb []uint32, cand uint32) error {
			return inner(w, tr(w, emb), og.OrigID(cand))
		}
	}
	return m.e.ExpandVisit(ctxOrBackground(ctx), vf, ef, visit)
}

// filters adapts the public filter to both engine modes. On a relabeled
// vertex-induced graph the filter sees original ids — the same translation
// ForEach and ExpandVisit apply — so user code is id-layout agnostic.
func (m *Miner) filters(filter EmbeddingFilter) (explore.VertexFilter, explore.EdgeFilter) {
	if filter == nil {
		return nil, nil
	}
	if tr := m.translator(); tr != nil {
		inner := filter
		og := m.g.g
		filter = func(w int, emb []uint32, cand uint32) bool {
			return inner(w, tr(w, emb), og.OrigID(cand))
		}
	}
	return func(w int, emb []uint32, cand uint32) bool { return filter(w, emb, cand) },
		func(w int, emb []uint32, _ []uint32, cand uint32) bool { return filter(w, emb, cand) }
}

// translator returns a per-worker buffer-reusing mapping from internal to
// original vertex ids, or nil when ids need no translation (edge-induced
// mode exposes opaque edge ids; unrelabeled graphs are the identity).
func (m *Miner) translator() func(worker int, emb []uint32) []uint32 {
	g := m.g.g
	if m.mode != VertexInduced || !g.Relabeled() {
		return nil
	}
	threads := m.cfg.Threads
	if threads <= 0 {
		threads = defaultWorkerCount()
	}
	bufs := make([][]uint32, threads)
	return func(w int, emb []uint32) []uint32 {
		buf := append(bufs[w][:0], emb...)
		for i, v := range buf {
			buf[i] = g.OrigID(v)
		}
		bufs[w] = buf
		return buf
	}
}

// Depth returns the current embedding size.
func (m *Miner) Depth() int { return m.e.Depth() }

// Count returns the number of embeddings at the current depth.
func (m *Miner) Count() int { return m.e.Count() }

// Bytes reports the resident footprint of the intermediate data.
func (m *Miner) Bytes() int64 { return m.e.Bytes() }

// SpilledLevels reports how many expansions migrated at least one CSE level
// part to disk.
func (m *Miner) SpilledLevels() int { return m.e.SpilledLevels() }

// SpilledParts reports how many CSE level parts were migrated to disk. The
// §4.1 storage is hybrid per part: a level near the memory budget typically
// keeps most parts resident and spills only the largest few.
func (m *Miner) SpilledParts() int { return m.e.SpilledParts() }

// PromotedParts reports how many disk-resident parts were promoted back to
// memory after an in-place FilterTop left the (shared) budget with headroom.
func (m *Miner) PromotedParts() int { return m.e.PromotedParts() }

// SpilledBytes reports the logical size (raw word bytes) of every part the
// run migrated to disk, cumulatively.
func (m *Miner) SpilledBytes() int64 { return m.e.SpilledBytes() }

// SpilledBytesPhysical reports what those parts actually occupied on disk —
// equal to SpilledBytes with CompressionOff, typically 2-4× smaller with the
// default delta+varint spill codec.
func (m *Miner) SpilledBytesPhysical() int64 { return m.e.SpilledBytesPhysical() }

// CompressedParts reports how many memory-resident CSE level parts were
// squeezed into the compressed-mem tier, cumulatively (by the mid-build
// governor under pressure and by cold-level compaction). Zero with
// ResidentCompression off.
func (m *Miner) CompressedParts() int { return m.e.CompressedParts() }

// ResidentBytesLogical reports the raw word footprint the currently resident
// level data stands for — exceeds Bytes while compressed-mem parts are live;
// the ratio is the budget stretch the compressed-resident tier is buying.
func (m *Miner) ResidentBytesLogical() int64 { return m.e.ResidentBytesLogical() }

// LevelStat describes the storage placement of one live CSE level.
type LevelStat struct {
	// Len and Groups are the level's embedding and parent-group counts.
	Len, Groups int
	// MemParts and DiskParts count the level's parts by residency;
	// CompressedParts is the compressed-mem subset of MemParts.
	MemParts, CompressedParts, DiskParts int
	// ResidentBytes is the in-memory footprint (arrays plus the sparse
	// indexes of disk parts); ResidentBytesLogical is the raw word
	// footprint the resident parts stand for (equal to ResidentBytes when
	// none are compressed); DiskBytes is the logical on-disk footprint
	// (raw word size); DiskBytesPhysical is the bytes the disk parts
	// actually occupy — smaller than DiskBytes when spill compression is on.
	ResidentBytes, ResidentBytesLogical, DiskBytes, DiskBytesPhysical int64
}

// LevelStats reports the placement of every live CSE level, base first —
// the part-level view of the half-memory-half-disk hybrid storage.
func (m *Miner) LevelStats() []LevelStat {
	return publicLevelStats(m.e.LevelStats())
}

// publicLevelStats converts the internal level placement snapshot to the
// public type; shared by Miner.LevelStats and the Stats.Levels capture.
func publicLevelStats(in []explore.LevelStat) []LevelStat {
	if len(in) == 0 {
		return nil
	}
	out := make([]LevelStat, len(in))
	for i, s := range in {
		out[i] = LevelStat{
			Len: s.Len, Groups: s.Groups,
			MemParts: s.MemParts, CompressedParts: s.CompressedParts, DiskParts: s.DiskParts,
			ResidentBytes: s.ResidentBytes, ResidentBytesLogical: s.ResidentBytesLogical,
			DiskBytes: s.DiskBytes, DiskBytesPhysical: s.DiskBytesPhysical,
		}
	}
	return out
}

// ForEach visits every current embedding in parallel. worker identifies the
// calling goroutine (0..Threads-1) for worker-local state; emb is a reused
// buffer the callback must not retain. Cancelling ctx aborts the walk with
// ctx.Err().
func (m *Miner) ForEach(ctx context.Context, visit func(worker int, emb []uint32) error) error {
	if tr := m.translator(); tr != nil {
		inner := visit
		visit = func(w int, emb []uint32) error { return inner(w, tr(w, emb)) }
	}
	return m.e.ForEach(ctxOrBackground(ctx), visit)
}

// AggregatePatterns computes the pattern of every current vertex-induced
// embedding with the configured isomorphism backend and returns the counts —
// the ResultAggregator of Listing 1 with the default mapper. Cancelling ctx
// aborts the aggregation with ctx.Err().
func (m *Miner) AggregatePatterns(ctx context.Context) ([]PatternCount, error) {
	threads := m.cfg.Threads
	if threads <= 0 {
		threads = defaultWorkerCount()
	}
	type agg struct {
		pat   *pattern.Pattern
		count uint64
	}
	maps := make([]map[uint64]*agg, threads)
	hashers := make([]*eigen.Hasher, threads)
	for i := range maps {
		maps[i] = map[uint64]*agg{}
		hashers[i] = eigen.New()
	}
	err := m.e.ForEach(ctxOrBackground(ctx), func(w int, emb []uint32) error {
		p, err := pattern.FromEmbedding(m.g.g, emb)
		if err != nil {
			return err
		}
		h := hashers[w].Hash(p)
		if a, ok := maps[w][h]; ok {
			a.count++
		} else {
			maps[w][h] = &agg{pat: p.Clone(), count: 1}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	merged := map[uint64]*agg{}
	for _, mm := range maps {
		for h, a := range mm {
			if prev, ok := merged[h]; ok {
				prev.count += a.count
			} else {
				merged[h] = a
			}
		}
	}
	out := make([]PatternCount, 0, len(merged))
	for _, a := range merged {
		out = append(out, PatternCount{Pattern: publicPattern(a.pat), Count: a.count})
	}
	sortPublicCounts(out)
	return out, nil
}

// Close releases the Miner's resources, removing any spilled levels. A Miner
// vended by an Engine stops counting as an active run and folds its spill
// accounting into Engine.Stats on the first Close.
func (m *Miner) Close() error {
	if m.en != nil {
		m.enOnce.Do(func() {
			m.en.endRun(&apps.SpillInfo{
				SpilledLevels:   m.e.SpilledLevels(),
				SpilledParts:    m.e.SpilledParts(),
				PromotedParts:   m.e.PromotedParts(),
				CompressedParts: m.e.CompressedParts(),
			}, nil)
		})
	}
	return m.e.Close()
}
