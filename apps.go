package kaleido

import (
	"context"

	"kaleido/internal/apps"
	"kaleido/internal/memtrack"
	"kaleido/internal/pattern"
)

// Pattern is a small labeled template graph — the shape shared by a class of
// isomorphic embeddings (paper §3.2, Fig. 5).
type Pattern struct {
	// K is the vertex count (1..8).
	K int
	// Labels holds the vertex labels in normalized (label, degree) order.
	Labels []uint16
	// Edges lists the pattern's edges as index pairs into Labels.
	Edges [][2]int
}

// String renders the pattern as "[labels] {edges}".
func (p Pattern) String() string { return p.internal().String() }

func (p Pattern) internal() *pattern.Pattern {
	q, err := pattern.New(p.K)
	if err != nil {
		return &pattern.Pattern{}
	}
	for i, l := range p.Labels {
		q.Labels[i] = l
	}
	for _, e := range p.Edges {
		q.SetEdge(e[0], e[1])
	}
	return q
}

func publicPattern(p *pattern.Pattern) Pattern {
	out := Pattern{K: p.K, Labels: make([]uint16, p.K)}
	for i := 0; i < p.K; i++ {
		out.Labels[i] = p.Labels[i]
	}
	for i := 0; i < p.K; i++ {
		for j := i + 1; j < p.K; j++ {
			if p.HasEdge(i, j) {
				out.Edges = append(out.Edges, [2]int{i, j})
			}
		}
	}
	return out
}

// PatternCount is one aggregated pattern with its embedding count and (for
// FSM) its MNI support.
type PatternCount struct {
	Pattern Pattern
	Count   uint64
	Support uint64
}

func publicCounts(in []apps.PatternCount) []PatternCount {
	out := make([]PatternCount, len(in))
	for i, pc := range in {
		out[i] = PatternCount{Pattern: publicPattern(pc.Pattern), Count: pc.Count, Support: pc.Support}
	}
	return out
}

// Triangles counts the triangles of the graph (§5.1 Triangle Counting).
// Cancelling ctx aborts the run promptly with ctx.Err().
func (g *Graph) Triangles(ctx context.Context, cfg Config) (uint64, error) {
	if err := cfg.validate(); err != nil {
		return 0, err
	}
	if cfg.Shards > 1 {
		res, err := runSharded(ctx, Job{Graph: g, App: AppTriangles, Config: cfg}, cfg.Shards, memtrack.NewArbiter(cfg.MemoryBudget))
		if err != nil {
			return 0, err
		}
		return res.Count, nil
	}
	opt, tracker := cfg.appOptions()
	defer cfg.finish(tracker, opt.Spill)
	return apps.TriangleCount(ctxOrBackground(ctx), g.g, opt)
}

// Cliques counts the k-cliques of the graph (§5.1 Clique Discovery).
// Cancelling ctx aborts the run promptly with ctx.Err().
func (g *Graph) Cliques(ctx context.Context, k int, cfg Config) (uint64, error) {
	if err := cfg.validate(); err != nil {
		return 0, err
	}
	if cfg.Shards > 1 {
		res, err := runSharded(ctx, Job{Graph: g, App: AppCliques, K: k, Config: cfg}, cfg.Shards, memtrack.NewArbiter(cfg.MemoryBudget))
		if err != nil {
			return 0, err
		}
		return res.Count, nil
	}
	opt, tracker := cfg.appOptions()
	defer cfg.finish(tracker, opt.Spill)
	return apps.CliqueCount(ctxOrBackground(ctx), g.g, k, opt)
}

// Motifs counts the frequency of every k-vertex motif, treating the graph as
// unlabeled (§5.1 Motif Counting). k must be at most 8. Cancelling ctx
// aborts the run promptly with ctx.Err().
func (g *Graph) Motifs(ctx context.Context, k int, cfg Config) ([]PatternCount, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Shards > 1 {
		res, err := runSharded(ctx, Job{Graph: g, App: AppMotifs, K: k, Config: cfg}, cfg.Shards, memtrack.NewArbiter(cfg.MemoryBudget))
		if err != nil {
			return nil, err
		}
		return res.Patterns, nil
	}
	opt, tracker := cfg.appOptions()
	defer cfg.finish(tracker, opt.Spill)
	res, err := apps.MotifCount(ctxOrBackground(ctx), g.g, k, opt)
	if err != nil {
		return nil, err
	}
	return publicCounts(res), nil
}

// FSM mines the frequent subgraphs with k−1 edges and at most k vertices
// under the minimum image-based support metric (§5.1). Patterns whose
// support reaches the threshold are reported; following the paper (§6.2) the
// reported Support is the threshold-crossing value, not the exact MNI.
// Cancelling ctx aborts the run promptly with ctx.Err().
func (g *Graph) FSM(ctx context.Context, k int, support uint64, cfg Config) ([]PatternCount, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Shards > 1 {
		res, err := runSharded(ctx, Job{Graph: g, App: AppFSM, K: k, Support: support, Config: cfg}, cfg.Shards, memtrack.NewArbiter(cfg.MemoryBudget))
		if err != nil {
			return nil, err
		}
		return res.Patterns, nil
	}
	opt, tracker := cfg.appOptions()
	defer cfg.finish(tracker, opt.Spill)
	res, err := apps.FSM(ctxOrBackground(ctx), g.g, k, support, opt)
	if err != nil {
		return nil, err
	}
	return publicCounts(res), nil
}
