package kaleido

import (
	"strings"
	"sync/atomic"
	"testing"
)

// paperGraph builds the Fig. 3 running example through the public API.
func paperGraph(t testing.TB) *Graph {
	t.Helper()
	b := NewGraphBuilder(5)
	for _, e := range [][2]uint32{{0, 1}, {0, 4}, {1, 4}, {1, 2}, {2, 3}, {2, 4}, {3, 4}} {
		b.AddEdge(e[0], e[1])
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPublicTriangles(t *testing.T) {
	g := paperGraph(t)
	n, err := g.Triangles(bgCtx, Config{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("Triangles = %d, want 3", n)
	}
}

func TestPublicCliquesAndMotifs(t *testing.T) {
	g := paperGraph(t)
	c, err := g.Cliques(bgCtx, 3, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if c != 3 {
		t.Fatalf("Cliques(3) = %d, want 3", c)
	}
	motifs, err := g.Motifs(bgCtx, 3, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(motifs) != 2 || motifs[0].Count != 5 || motifs[1].Count != 3 {
		t.Fatalf("Motifs(3) = %+v, want chain:5, triangle:3", motifs)
	}
}

func TestPublicFSM(t *testing.T) {
	b := NewGraphBuilder(6)
	b.SetLabel(0, 0)
	b.SetLabel(1, 0)
	for v := uint32(2); v < 6; v++ {
		b.SetLabel(v, 1)
	}
	b.AddEdge(0, 2)
	b.AddEdge(0, 3)
	b.AddEdge(1, 4)
	b.AddEdge(1, 5)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.FSM(bgCtx, 3, 2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Count != 2 || res[0].Support != 2 {
		t.Fatalf("FSM = %+v", res)
	}
	if res[0].Pattern.K != 3 || len(res[0].Pattern.Edges) != 2 {
		t.Fatalf("pattern = %v", res[0].Pattern)
	}
}

func TestPublicStatsAndHybrid(t *testing.T) {
	g := paperGraph(t)
	var stats Stats
	n, err := g.Triangles(bgCtx, Config{Stats: &stats})
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 || stats.PeakBytes == 0 {
		t.Fatalf("n=%d peak=%d", n, stats.PeakBytes)
	}
	var hstats Stats
	m, err := g.Motifs(bgCtx, 4, Config{MemoryBudget: 1, SpillDir: t.TempDir(), Stats: &hstats})
	if err != nil {
		t.Fatal(err)
	}
	if len(m) == 0 {
		t.Fatal("no 4-motifs found")
	}
	if hstats.WriteBytes == 0 {
		t.Fatal("hybrid run recorded no disk writes")
	}
	if hstats.SpilledLevels == 0 || hstats.SpilledParts < hstats.SpilledLevels {
		t.Fatalf("spill accounting: %d levels / %d parts", hstats.SpilledLevels, hstats.SpilledParts)
	}
}

// TestMinerLevelStats drives a Miner under a budget sized mid-level and
// reads the per-part placement through the public LevelStats surface.
func TestMinerLevelStats(t *testing.T) {
	g, err := Synthetic(300, 1200, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Reference run to size the budget between depth-2 and depth-3 CSEs.
	ref, err := g.NewMiner(bgCtx, VertexInduced, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	if err := ref.Expand(bgCtx, nil); err != nil {
		t.Fatal(err)
	}
	after2 := ref.Bytes()
	if err := ref.Expand(bgCtx, nil); err != nil {
		t.Fatal(err)
	}
	after3 := ref.Bytes()

	m, err := g.NewMiner(bgCtx, VertexInduced, Config{
		MemoryBudget: after2 + (after3-after2)/2,
		SpillDir:     t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for i := 0; i < 2; i++ {
		if err := m.Expand(bgCtx, nil); err != nil {
			t.Fatal(err)
		}
	}
	if m.Count() != ref.Count() {
		t.Fatalf("budgeted count %d != reference %d", m.Count(), ref.Count())
	}
	stats := m.LevelStats()
	if len(stats) != 3 {
		t.Fatalf("LevelStats len = %d, want 3", len(stats))
	}
	top := stats[2]
	if top.MemParts == 0 || top.DiskParts == 0 || top.DiskBytes == 0 {
		t.Fatalf("top level not hybrid: %+v", top)
	}
	if m.SpilledParts() < top.DiskParts || m.SpilledLevels() == 0 {
		t.Fatalf("spill counters: %d parts / %d levels", m.SpilledParts(), m.SpilledLevels())
	}
}

func TestConfigValidation(t *testing.T) {
	g := paperGraph(t)
	if _, err := g.Triangles(bgCtx, Config{MemoryBudget: 10}); err == nil {
		t.Fatal("budget without spill dir accepted")
	}
	if _, err := g.Motifs(bgCtx, 3, Config{Iso: IsoAlgo(9)}); err == nil {
		t.Fatal("bad iso backend accepted")
	}
}

func TestLoadEdgeList(t *testing.T) {
	g, err := LoadEdgeList(strings.NewReader("0 1\n1 2\n2 0\n0 label=1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 3 || g.Label(0) != 1 {
		t.Fatalf("graph = %d/%d label=%d", g.N(), g.M(), g.Label(0))
	}
	n, err := g.Triangles(bgCtx, Config{})
	if err != nil || n != 1 {
		t.Fatalf("triangles = %d, %v", n, err)
	}
}

func TestDatasets(t *testing.T) {
	names := DatasetNames()
	if len(names) != 4 {
		t.Fatalf("datasets = %v", names)
	}
	g, err := Dataset("citeseer", t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3312 {
		t.Fatalf("citeseer N = %d", g.N())
	}
	if _, err := Dataset("nope", ""); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestSynthetic(t *testing.T) {
	g, err := Synthetic(500, 1500, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 500 || g.NumLabels() != 4 {
		t.Fatalf("synthetic = %d/%d", g.N(), g.NumLabels())
	}
}

func TestMinerCustomApp(t *testing.T) {
	// A custom wedge counter (paths of length 2) through the Miner API.
	g := paperGraph(t)
	m, err := g.NewMiner(bgCtx, VertexInduced, Config{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for i := 0; i < 2; i++ {
		if err := m.Expand(bgCtx, nil); err != nil {
			t.Fatal(err)
		}
	}
	if m.Depth() != 3 || m.Count() != 8 {
		t.Fatalf("depth=%d count=%d, want 3, 8", m.Depth(), m.Count())
	}
	counts, err := m.AggregatePatterns(bgCtx)
	if err != nil {
		t.Fatal(err)
	}
	if len(counts) != 2 || counts[0].Count != 5 || counts[1].Count != 3 {
		t.Fatalf("patterns = %+v", counts)
	}
}

func TestMinerExpandCountAndVisit(t *testing.T) {
	// The terminal sinks through the public API: counting wedges (paths of
	// length 2) without materializing the 3-level, then visiting them.
	g := paperGraph(t)
	m, err := g.NewMiner(bgCtx, VertexInduced, Config{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.Expand(bgCtx, nil); err != nil {
		t.Fatal(err)
	}
	bytes := m.Bytes()
	n, err := m.ExpandCount(bgCtx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 8 {
		t.Fatalf("ExpandCount = %d, want 8 (paper s13..s20)", n)
	}
	if m.Depth() != 2 || m.Bytes() != bytes {
		t.Fatalf("counted expansion changed the CSE: depth=%d bytes=%d->%d", m.Depth(), bytes, m.Bytes())
	}
	var visited atomic.Int64
	err = m.ExpandVisit(bgCtx, nil, func(_ int, emb []uint32, cand uint32) error {
		if len(emb) != 2 {
			t.Errorf("visit emb len %d", len(emb))
		}
		visited.Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if visited.Load() != 8 {
		t.Fatalf("ExpandVisit saw %d extensions, want 8", visited.Load())
	}
	// A worker-aware filter composes with the terminal sinks: only
	// extensions adjacent to every embedding vertex (triangles).
	tri, err := m.ExpandCount(bgCtx, func(_ int, emb []uint32, cand uint32) bool {
		for _, v := range emb {
			if !g.HasEdge(v, cand) {
				return false
			}
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if tri != 3 {
		t.Fatalf("filtered ExpandCount = %d, want 3 triangles", tri)
	}
}

func TestMinerEdgeInduced(t *testing.T) {
	g := paperGraph(t)
	m, err := g.NewMiner(bgCtx, EdgeInduced, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.Count() != 7 {
		t.Fatalf("edge 1-embeddings = %d, want 7", m.Count())
	}
	if err := m.Expand(bgCtx, nil); err != nil {
		t.Fatal(err)
	}
	if m.Count() == 0 {
		t.Fatal("no 2-edge embeddings")
	}
}
