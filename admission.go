package kaleido

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"kaleido/internal/memtrack"
)

// Admission-control errors. Both are returned wrapped, so dispatch with
// errors.Is:
//
//   - ErrQueueFull: the engine's bounded admission queue is at QueueLimit;
//     the job was rejected immediately, nothing was queued.
//   - ErrAdmitDeadline: the request's deadline passed before the arbiter had
//     headroom for it. Requests whose deadline has already expired fail fast
//     without queueing.
var (
	ErrQueueFull     = errors.New("kaleido: admission queue full")
	ErrAdmitDeadline = errors.New("kaleido: admission deadline expired")
)

// DefaultQueueLimit bounds the admission queue when Engine.QueueLimit is 0.
const DefaultQueueLimit = 64

// DefaultAdmitWatermark is the fraction of MemoryBudget that admitted work —
// live bytes plus outstanding reservations plus the new run's projection —
// may plan to fill when Engine.AdmitWatermark is 0. It sits below the spill
// watermark (0.9) on purpose: a run admitted into real headroom starts in
// memory instead of being shoved straight to disk.
const DefaultAdmitWatermark = 0.8

// admitPoll is how often a queued request re-checks headroom between events.
// Release/run-completion kick the dispatcher immediately; the poll only picks
// up headroom freed mid-run (level pops, in-place filters) that has no
// release edge of its own.
const admitPoll = 10 * time.Millisecond

// AdmitRequest describes one run asking to start under the engine's budget.
type AdmitRequest struct {
	// ProjectedBytes is the run's projected peak resident footprint — use
	// Graph.ProjectResidentBytes for the built-in apps, or any caller
	// estimate. The run is released when live + reserved + projected bytes
	// fit under AdmitWatermark·MemoryBudget. Projections larger than the
	// watermark itself are clamped to it, so an oversized job is admitted
	// once the engine is otherwise idle (and then runs mostly on disk, as
	// it must). 0 queues without reserving: the run starts on any headroom.
	ProjectedBytes int64
	// Priority orders the queue: higher runs first, FIFO within a priority.
	// Dispatch is head-of-line — a small low-priority job never jumps a
	// large high-priority one, so high-priority work cannot be starved.
	Priority int
	// Deadline bounds the queue wait. Zero means wait indefinitely (until
	// ctx cancels). An already-expired deadline fails fast with
	// ErrAdmitDeadline before queueing.
	Deadline time.Time
}

// Admission is a granted admission: a reservation of the request's projected
// bytes against the engine's budget headroom. Release it when the run
// completes (success, failure, or cancellation alike) — the reservation is
// what keeps later arrivals queued, so a leaked Admission wedges the queue.
type Admission struct {
	en  *Engine
	res *memtrack.Reservation
}

// Release returns the admission's reserved headroom and wakes the queue.
// Idempotent.
func (ad *Admission) Release() {
	if ad == nil || ad.en == nil {
		return
	}
	ad.res.Release() // nil-safe, first call wins
	ad.en.kickAdmission()
}

// admitWaiter is one queued admission request.
type admitWaiter struct {
	req   AdmitRequest
	seq   uint64
	ready chan *Admission // buffered 1; dispatch hands the admission over
}

// Admit blocks until the engine has budget headroom for the request, then
// returns an Admission reserving its projected bytes. This is the admission
// controller in front of the arbiter: new arrivals wait in a bounded
// priority queue instead of starting immediately and shoving every run —
// themselves included — toward disk.
//
// Admit returns ErrQueueFull without queueing when QueueLimit requests are
// already waiting, ErrAdmitDeadline when the request's deadline passes (or
// has already passed) before headroom frees, and ctx.Err() when ctx is
// cancelled while queued. On an unbudgeted engine (MemoryBudget 0) there is
// nothing to arbitrate and Admit returns immediately.
//
// The built-in app methods do not call Admit themselves — pairing it with
// runs is the caller's policy. The kaleidod service admits every job before
// dispatching it; see internal/service.
func (en *Engine) Admit(ctx context.Context, req AdmitRequest) (*Admission, error) {
	ctx = ctxOrBackground(ctx)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if !req.Deadline.IsZero() && !time.Now().Before(req.Deadline) {
		return nil, fmt.Errorf("expired %s ago before queueing: %w",
			time.Since(req.Deadline).Round(time.Millisecond), ErrAdmitDeadline)
	}
	if en.AdmitWatermark < 0 || en.AdmitWatermark > 1 {
		return nil, fmt.Errorf("kaleido: AdmitWatermark %v outside [0, 1]", en.AdmitWatermark)
	}
	if en.MemoryBudget <= 0 {
		return &Admission{en: en}, nil
	}

	en.admitMu.Lock()
	if len(en.waiters) >= en.queueLimit() {
		n := len(en.waiters)
		en.admitMu.Unlock()
		return nil, fmt.Errorf("%d requests waiting (QueueLimit %d): %w", n, en.queueLimit(), ErrQueueFull)
	}
	w := &admitWaiter{req: req, seq: en.admitSeq, ready: make(chan *Admission, 1)}
	en.admitSeq++
	en.waiters = append(en.waiters, w)
	en.dispatchLocked()
	en.admitMu.Unlock()

	var deadlineC <-chan time.Time
	if !req.Deadline.IsZero() {
		timer := time.NewTimer(time.Until(req.Deadline))
		defer timer.Stop()
		deadlineC = timer.C
	}
	poll := time.NewTicker(admitPoll)
	defer poll.Stop()
	for {
		select {
		case adm := <-w.ready:
			return adm, nil
		case <-ctx.Done():
			en.abandon(w)
			return nil, ctx.Err()
		case <-deadlineC:
			en.abandon(w)
			return nil, fmt.Errorf("no headroom within the deadline (queued %s): %w",
				time.Until(req.Deadline).Round(time.Millisecond), ErrAdmitDeadline)
		case <-poll.C:
			en.kickAdmission()
		}
	}
}

func (en *Engine) queueLimit() int {
	if en.QueueLimit > 0 {
		return en.QueueLimit
	}
	return DefaultQueueLimit
}

func (en *Engine) admitLimit() int64 {
	wm := en.AdmitWatermark
	if wm == 0 {
		wm = DefaultAdmitWatermark
	}
	return int64(wm * float64(en.MemoryBudget))
}

// kickAdmission re-evaluates the queue head; called whenever headroom may
// have grown (an Admission released, a run finished, a poll tick).
func (en *Engine) kickAdmission() {
	en.admitMu.Lock()
	en.dispatchLocked()
	en.admitMu.Unlock()
}

// dispatchLocked admits queue heads while they fit. Order is strict: highest
// priority first, FIFO within a priority, and no bypass — if the head does
// not fit, nothing behind it is considered. Bypass would let a stream of
// small jobs starve a large one indefinitely; head-of-line blocking bounds
// every job's wait by the jobs ahead of it.
func (en *Engine) dispatchLocked() {
	if len(en.waiters) == 0 {
		return
	}
	arb := en.arbiter()
	limit := en.admitLimit()
	// The queue is small (≤QueueLimit) and dispatch is not a hot path: sort
	// on every pass instead of maintaining a heap.
	sort.SliceStable(en.waiters, func(i, j int) bool {
		if en.waiters[i].req.Priority != en.waiters[j].req.Priority {
			return en.waiters[i].req.Priority > en.waiters[j].req.Priority
		}
		return en.waiters[i].seq < en.waiters[j].seq
	})
	for len(en.waiters) > 0 {
		w := en.waiters[0]
		need := w.req.ProjectedBytes
		if need < 0 {
			need = 0
		}
		if need > limit {
			need = limit // oversized jobs admit on an idle engine
		}
		if arb.Live()+arb.Reserved()+need > limit {
			return
		}
		w.ready <- &Admission{en: en, res: arb.Reserve(need)}
		en.waiters = en.waiters[1:]
	}
}

// abandon removes w from the queue (ctx cancel or deadline expiry). If w was
// admitted concurrently — dispatch won the race — the admission is taken
// back and released so its reservation cannot leak.
func (en *Engine) abandon(w *admitWaiter) {
	en.admitMu.Lock()
	for i, q := range en.waiters {
		if q == w {
			en.waiters = append(en.waiters[:i], en.waiters[i+1:]...)
			en.admitMu.Unlock()
			return
		}
	}
	en.admitMu.Unlock()
	select {
	case adm := <-w.ready:
		adm.Release()
	default:
	}
}

// ProjectResidentBytes projects the peak resident footprint of running app
// over the graph — the admission-control input. The projection follows the
// fan-out trend the §4.2 predictor falls back to before any level exists:
// level-1 holds one unit per seed (N vertices, or M edges for FSM), each
// expansion multiplies the frontier by roughly half the average degree (the
// canonical filter keeps ascending extensions only), and a stored embedding
// costs a vertex word plus its share of the bounds and parent arrays. The
// terminal level of every built-in app is consumed at the frontier (sinks),
// so only k−1 levels are priced.
//
// This is a coarse upper-band estimate, not a promise: admission only needs
// projections that are deterministic and ordered like the true footprints.
// A run that outgrows its projection is still governed by the spill
// watermark — it spills, it does not blow the budget.
func (g *Graph) ProjectResidentBytes(app App, k int) int64 {
	const unitBytes = 12 // vert word + bounds/pred share, see cse sizing
	seeds := int64(g.N())
	levels := k - 1 // terminal level is sink-consumed, never stored
	switch app {
	case AppTriangles:
		levels = 2 // stored 1- and 2-vertex levels; triangles counted at the frontier
	case AppFSM:
		seeds = int64(g.M()) // edge-induced: level 1 is the edge set
	}
	if levels < 1 {
		levels = 1
	}
	growth := g.AvgDegree() / 2
	if growth < 1 {
		growth = 1
	}
	const ceiling = int64(1) << 50 // past any real budget; avoids overflow
	total := int64(0)
	count := float64(seeds)
	for l := 1; l <= levels; l++ {
		total += int64(count * unitBytes)
		if total < 0 || total > ceiling {
			return ceiling
		}
		count *= growth
	}
	return total
}
