package kaleido

import (
	"runtime"
	"sort"

	"kaleido/internal/dataset"
	"kaleido/internal/gen"
)

// Dataset returns a named evaluation graph: "citeseer", "mico", "patent" or
// "youtube" — seeded synthetic equivalents of the paper's Table 1 datasets
// (same label count and average degree, power-law degrees, scaled vertex
// counts; see DESIGN.md). cacheDir caches the generated graph on disk ("" to
// regenerate every call).
func Dataset(name, cacheDir string) (*Graph, error) {
	d, err := dataset.ByName(name)
	if err != nil {
		return nil, err
	}
	g, err := dataset.Load(d, cacheDir)
	if err != nil {
		return nil, err
	}
	// Load relabels new graphs itself (and caches carry the relabel flag);
	// wrapGraph is a no-op then, but covers caches written before the flag.
	return wrapGraph(g)
}

// DatasetNames lists the available named datasets.
func DatasetNames() []string {
	names := make([]string, len(dataset.All))
	for i, d := range dataset.All {
		names[i] = d.Name
	}
	return names
}

// Synthetic generates a labeled power-law random graph with n vertices,
// ~m edges, the given label count and deterministic seed.
func Synthetic(n, m, labels int, seed int64) (*Graph, error) {
	g, err := gen.PowerLaw(gen.Config{
		N: n, M: m, Alpha: 2.2, NumLabels: labels, LabelSkew: 0.8, Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	return wrapGraph(g)
}

func defaultWorkerCount() int { return runtime.GOMAXPROCS(0) }

func sortPublicCounts(out []PatternCount) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Pattern.String() < out[j].Pattern.String()
	})
}
